(* Command-line driver: run one benchmark application under one protocol on
   a simulated machine and print the measured report.

   Example:
     dune exec bin/svm_run.exe -- --app lu --protocol hlrc --nodes 32
     dune exec bin/svm_run.exe -- --app raytrace --protocol lrc --nodes 8 --trace *)

open Cmdliner

let run app_name proto_name nprocs scale_name verify trace seed breakdown migrate coproc_locks
    =
  let scale =
    match String.lowercase_ascii scale_name with
    | "test" -> Apps.Registry.Test
    | "bench" -> Apps.Registry.Bench
    | "full" -> Apps.Registry.Full
    | other -> failwith (Printf.sprintf "unknown scale %S (test|bench|full)" other)
  in
  let protocol =
    match Svm.Config.protocol_of_string proto_name with
    | Some p -> p
    | None -> failwith (Printf.sprintf "unknown protocol %S (lrc|olrc|hlrc|ohlrc)" proto_name)
  in
  let app =
    match Apps.Registry.find app_name scale with
    | Some a -> a
    | None ->
        failwith
          (Printf.sprintf "unknown application %S (%s)" app_name
             (String.concat "|" Apps.Registry.names))
  in
  let cfg = Svm.Config.make ~home_migration:migrate ~coproc_locks ~nprocs ~seed protocol in
  let trace_fn =
    if trace then Some (fun t s -> Printf.printf "[%12.1f us] %s\n" t s) else None
  in
  let t0 = Unix.gettimeofday () in
  let r = Svm.Runtime.run ?trace:trace_fn cfg (app.Apps.Registry.body ~verify) in
  let wall = Unix.gettimeofday () -. t0 in
  Format.printf "application : %s (%s)@." app.Apps.Registry.name app.Apps.Registry.description;
  Format.printf "protocol    : %s, %d nodes@." (Svm.Config.protocol_name protocol) nprocs;
  Format.printf "elapsed     : %.3f simulated seconds (%.2f s wall, %d events)@."
    (r.Svm.Runtime.r_elapsed /. 1e6) wall r.Svm.Runtime.r_events;
  Format.printf "shared mem  : %d KB application, %d KB peak protocol (max node)@."
    (r.Svm.Runtime.r_shared_bytes / 1024)
    (Svm.Runtime.max_mem_peak r / 1024);
  Format.printf "traffic     : %d messages, %.2f MB updates, %.2f MB protocol@."
    (Svm.Runtime.total_messages r)
    (float_of_int (Svm.Runtime.total_update_bytes r) /. 1048576.0)
    (float_of_int (Svm.Runtime.total_protocol_bytes r) /. 1048576.0);
  if verify then Format.printf "verification: passed (results match the sequential reference)@.";
  if breakdown then begin
    Format.printf "@.per-node breakdowns:@.";
    Array.iter
      (fun n ->
        Format.printf "  node %2d: %10.0f us  %a@." n.Svm.Runtime.nr_id n.Svm.Runtime.nr_elapsed
          Svm.Stats.pp_breakdown n.Svm.Runtime.nr_breakdown)
      r.Svm.Runtime.r_nodes
  end

let app_arg =
  let doc = "Application: " ^ String.concat ", " Apps.Registry.names ^ "." in
  Arg.(value & opt string "lu" & info [ "a"; "app" ] ~docv:"APP" ~doc)

let proto_arg =
  let doc = "Protocol: lrc, olrc, hlrc or ohlrc." in
  Arg.(value & opt string "hlrc" & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc)

let nodes_arg =
  let doc = "Number of nodes to simulate." in
  Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let scale_arg =
  let doc = "Problem scale: test, bench or full." in
  Arg.(value & opt string "bench" & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let verify_arg =
  let doc = "Check results against the sequential reference (default true)." in
  Arg.(value & opt bool true & info [ "verify" ] ~docv:"BOOL" ~doc)

let trace_arg =
  let doc = "Print the protocol event trace." in
  Arg.(value & flag & info [ "t"; "trace" ] ~doc)

let seed_arg =
  let doc = "Simulation seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let breakdown_arg =
  let doc = "Print per-node time breakdowns." in
  Arg.(value & flag & info [ "b"; "breakdown" ] ~doc)

let migrate_arg =
  let doc = "Enable adaptive home migration (home-based protocols)." in
  Arg.(value & flag & info [ "migrate" ] ~doc)

let coproc_locks_arg =
  let doc = "Service lock requests on the co-processor (overlapped protocols)." in
  Arg.(value & flag & info [ "coproc-locks" ] ~doc)

let cmd =
  let doc = "run a Splash-2-style benchmark on the simulated SVM system" in
  let info = Cmd.info "svm_run" ~version:"1.0" ~doc in
  Cmd.v info
    Term.(
      const run $ app_arg $ proto_arg $ nodes_arg $ scale_arg $ verify_arg $ trace_arg $ seed_arg
      $ breakdown_arg $ migrate_arg $ coproc_locks_arg)

let () = exit (Cmd.eval cmd)
